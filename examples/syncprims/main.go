// Syncprims: the memory-based synchronization instructions at work.
//
// Cedar implements Test-And-Set and a Test-And-Operate family in each
// global memory module, executed by a synchronization processor at the
// memory — a single network round trip instead of a lock cycle. This
// example demonstrates the three uses the paper describes: mutual
// exclusion, loop self-scheduling by fetch-and-add, and multicluster
// barriers.
//
//	go run ./examples/syncprims
package main

import (
	"fmt"
	"log"

	"repro/internal/cedarfort"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/sim"
)

func main() {
	m, err := core.New(core.ConfigClusters(2))
	if err != nil {
		log.Fatal(err)
	}
	rt := cedarfort.New(m, cedarfort.DefaultConfig())

	// 1. Test-And-Set: 16 CEs race for one lock word; exactly one wins.
	lock := m.AllocGlobal(1)
	winners := 0
	for id := 0; id < m.NumCEs(); id++ {
		op := isa.NewSync(lock, network.TestAndSet())
		op.OnDone = func(v int64, ok bool) {
			if ok {
				winners++
			}
		}
		m.Dispatch(id, isa.NewSeq(op))
	}
	if _, err := m.RunUntilIdle(100000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Test-And-Set: %d of %d CEs acquired the lock (lock word = %d)\n",
		winners, m.NumCEs(), m.Global.LoadInt(lock))

	// 2. Fetch-and-add self-scheduling: a shared counter hands out
	// loop iterations; every iteration is claimed exactly once.
	counter := m.AllocGlobal(1)
	const iters = 100
	claimed := make([]int, iters)
	for id := 0; id < m.NumCEs(); id++ {
		done := false
		g := isa.NewGen(func(g *isa.Gen) bool {
			if done {
				return false
			}
			claim := isa.NewSync(counter, network.FetchAndAdd(1))
			claim.OnDone = func(v int64, ok bool) {
				if int(v) >= iters {
					done = true
					return
				}
				work := isa.NewCompute(25)
				work.Do = func() { claimed[v]++ }
				g.Emit(work)
			}
			g.Emit(claim)
			return true
		})
		m.Dispatch(id, g)
	}
	if _, err := m.RunUntilIdle(1000000); err != nil {
		log.Fatal(err)
	}
	for i, c := range claimed {
		if c != 1 {
			log.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
	fmt.Printf("fetch-and-add: %d iterations self-scheduled over %d CEs, each exactly once\n",
		iters, m.NumCEs())

	// 3. A sense-reversing barrier across both clusters, reused three
	// times; the Test-And-Operate arrival and generation bump are the
	// runtime library's own construction.
	bar := rt.NewBarrier(m.NumCEs())
	phaseEnd := make([]int, 3)
	for id := 0; id < m.NumCEs(); id++ {
		g := isa.NewGen(func(g *isa.Gen) bool { return false })
		for ep := 0; ep < 3; ep++ {
			work := isa.NewCompute(sim.Cycle(10 + 5*(id%7)))
			g.Emit(work)
			bar.Emit(g)
			epoch := ep
			after := isa.NewCompute(1)
			after.Do = func() { phaseEnd[epoch]++ }
			g.Emit(after)
		}
		m.Dispatch(id, g)
	}
	if _, err := m.RunUntilIdle(1000000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("barrier: 3 epochs completed by all %d CEs (%v crossings)\n",
		m.NumCEs(), phaseEnd)
}
